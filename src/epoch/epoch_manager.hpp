// EpochManager: distributed, lock-free Epoch-Based Reclamation
// (paper Sec. II.B-C, Fig. 1-2, Listing 4).
//
// Structure
// ---------
// * One privatized instance per locale (record-wrapped handle => zero
//   communication to reach the local instance, even inside distributed
//   forall loops).
// * Each instance has three limbo lists -- the epochs e-1, e, e+1 -- a
//   locale-private epoch cache, a local election flag, a token pool, and a
//   scatter array used to sort deferred objects by owning locale before
//   bulk deletion.
// * A single GlobalEpoch object lives on locale 0 so all locales reach
//   consensus on one centralized epoch; it is accessed with network
//   atomics (RDMA in CommMode::ugni).
//
// Reclamation protocol (tryReclaim, Listing 4)
// --------------------------------------------
// 1. first-come-first-serve election, local flag then global flag; losers
//    return immediately (non-blocking, keeps the manager lock-free).
// 2. scan every locale's allocated tokens on that locale; safe iff every
//    token is quiescent or pinned in the current global epoch.
// 3. if safe: advance the global epoch, then on every locale update the
//    epoch cache, pop the limbo list that is now two epochs old in one
//    exchange, scatter its objects by owner locale, and bulk-delete each
//    bucket on its owner.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "epoch/limbo_list.hpp"
#include "epoch/reclaim_stats.hpp"
#include "epoch/token.hpp"
#include "runtime/collectives.hpp"
#include "runtime/comm.hpp"
#include "runtime/privatization.hpp"
#include "runtime/runtime.hpp"

namespace pgasnb {

/// The single, centralized epoch all locales agree on; allocated on locale
/// 0 and accessed via network atomics (paper: "a class instance wraps the
/// global epoch itself").
struct GlobalEpoch {
  DistAtomicU64 epoch{1};
  DistAtomicU64 is_setting_epoch{0};
  std::atomic<std::uint64_t> advances{0};  // diagnostics
};

namespace detail {

struct ArenaLimboNodeAlloc {
  static LimboNode* alloc() { return gnew<LimboNode>(); }
  static void free(LimboNode* n) { gdelete(n); }
};
struct ArenaTokenAlloc {
  static Token* alloc() { return gnew<Token>(); }
  static void free(Token* t) { gdelete(t); }
};

template <typename T>
void arenaDeleter(void* p) {
  Runtime::get().deleteLocal(static_cast<T*>(p));
}

}  // namespace detail

/// Per-locale privatized instance. Users never touch this directly; it is
/// public only for tests and the benchmark harness.
class EpochManagerImpl {
 public:
  EpochManagerImpl(GlobalEpoch* global, std::uint32_t num_locales)
      : global_(global), objs_to_delete_(num_locales) {
    locale_epoch_.store(global->epoch.peek(), std::memory_order_relaxed);
  }

  ~EpochManagerImpl();

  EpochManagerImpl(const EpochManagerImpl&) = delete;
  EpochManagerImpl& operator=(const EpochManagerImpl&) = delete;

  // --- token operations (called via EpochToken) -------------------------

  Token* registerToken() { return tokens_.acquire(); }
  void unregisterToken(Token* token);

  /// Enter the locale's current epoch. Re-validates the epoch cache after
  /// publishing (hardening of the paper's pin; see DESIGN.md) so a pinned
  /// token can lag the global epoch by at most one advance.
  void pin(Token* token);
  void unpin(Token* token) noexcept;

  /// Defer deletion of `obj` into the limbo list of the token's epoch.
  /// Wait-free: node recycle + one exchange + one store.
  void deferDelete(Token* token, void* obj, ObjectDeleter deleter);

  struct ScatterEntry {
    void* obj;
    ObjectDeleter deleter;
  };

  /// Insert one retire shipped from another locale into this locale's
  /// current-epoch limbo list. Runs on the progress thread (per-op AM path).
  /// Inserting at the *receiver's* epoch is safe regardless of sender lag:
  /// it can only delay the object past more grace periods, never fewer.
  void insertRemoteRetire(void* obj, ObjectDeleter deleter);

  /// Bulk flavor for aggregated retires: acquires limbo nodes for every
  /// entry, pre-links them, and splices the chain with ONE exchange
  /// (LimboList::pushChain).
  void insertRemoteRetires(const std::vector<ScatterEntry>& entries);

  // --- reclamation machinery (called by free functions below) -----------

  /// Pop the limbo list `index` and scatter its objects into
  /// objs_to_delete_ buckets keyed by owning locale; recycles the nodes.
  void scatterLimboList(std::uint32_t index);

  /// Delete every object in `objs_to_delete_[dest]`; must run on `dest`.
  void deleteBucketFor(std::uint32_t dest);

  void clearScatter() {
    for (auto& bucket : objs_to_delete_) bucket.clear();
  }

  /// Count `n` fresh deferrals and raise the max_pending high-water mark.
  void notePendingAfterDefer(std::uint64_t n) noexcept {
    const std::uint64_t deferred =
        deferred_.fetch_add(n, std::memory_order_relaxed) + n;
    detail::raiseMax(max_pending_,
                     deferred - reclaimed_.load(std::memory_order_relaxed));
  }

  GlobalEpoch& global() noexcept { return *global_; }

  ReclaimStats statsSnapshot() const;
  /// Zero this locale's statistics (counters only; see
  /// LocalEpochManager::resetStats for the quiescence caveat).
  void resetStatsHere();

  // Fields are accessed directly by the reclaim driver in epoch_manager.cpp
  // and by white-box tests; this type is an implementation detail.
  GlobalEpoch* global_;
  std::atomic<std::uint64_t> locale_epoch_{1};
  std::atomic<std::uint64_t> is_setting_epoch_{0};  // local FCFS flag
  LimboList limbo_[kNumEpochs];
  LimboNodePool<detail::ArenaLimboNodeAlloc> node_pool_;
  TokenPool<detail::ArenaTokenAlloc> tokens_;

  std::vector<std::vector<ScatterEntry>> objs_to_delete_;

  // statistics (relaxed; summed across locales for reports)
  std::atomic<std::uint64_t> deferred_{0};
  std::atomic<std::uint64_t> reclaimed_{0};
  std::atomic<std::uint64_t> advances_{0};
  std::atomic<std::uint64_t> elections_lost_local_{0};
  std::atomic<std::uint64_t> elections_lost_global_{0};
  std::atomic<std::uint64_t> scans_unsafe_{0};
  std::atomic<std::uint64_t> max_pending_{0};
};

namespace detail {
/// Listing 4: attempt to advance the global epoch and reclaim. Returns
/// true iff the epoch advanced.
bool epochTryReclaim(Privatized<EpochManagerImpl> handle);
/// Phase-boundary advance: drive epochTryReclaim (with backoff) until the
/// global epoch has moved past the value observed at entry; returns the
/// new epoch. Blocking -- the *structural* advance the batch engine issues
/// at phase boundaries, as opposed to the opportunistic tryReclaim.
/// Requires eventual quiescence: every registered token must be (or
/// become) quiescent or pinned in the current epoch, or the scan never
/// turns safe and this spins forever.
std::uint64_t epochAdvance(Privatized<EpochManagerImpl> handle);
/// Reclaim everything in every epoch; caller guarantees quiescence.
void epochClearAll(Privatized<EpochManagerImpl> handle);
}  // namespace detail

class EpochManager;

/// RAII token handle (the paper wraps tokens in a managed class so scope
/// exit unregisters them -- this is the C++ equivalent, which makes the
/// `forall ... with (var tok = manager.acquireToken())` pattern safe).
/// It also owns the task's aggregated-retire buffers: cross-locale retires
/// coalesce here and ship through the comm::Aggregator in batches.
///
/// A token is bound to the locale and OS thread that registered it: the
/// underlying Token lives in that locale's pool, and buffered retires ride
/// the registering thread's thread-local aggregator. Moving it within the
/// task is fine; retiring through it or flushing it from a different
/// locale or thread is not (debug-checked).
class EpochToken {
 public:
  EpochToken() = default;
  EpochToken(EpochToken&& other) noexcept { *this = std::move(other); }
  EpochToken& operator=(EpochToken&& other) noexcept {
    reset();
    handle_ = other.handle_;
    token_ = other.token_;
    home_ = other.home_;
    owner_thread_ = other.owner_thread_;
    pending_remote_ = std::move(other.pending_remote_);
    other.token_ = nullptr;
    other.pending_remote_.clear();
    return *this;
  }
  EpochToken(const EpochToken&) = delete;
  EpochToken& operator=(const EpochToken&) = delete;

  ~EpochToken() { reset(); }

  bool valid() const noexcept { return token_ != nullptr; }

  void pin() { handle_.local().pin(token_); }
  /// Leave the epoch. First ships every buffered remote retire and drains
  /// the task's comm::Aggregator -- flush-on-unpin is what guarantees an
  /// aggregated retire cannot be stranded past its guard's lifetime.
  void unpin() {
    // No-op on an invalid (released/moved-from) token: already quiescent.
    if (token_ == nullptr) return;
    flush();
    handle_.local().unpin(token_);
  }
  /// An invalid (default-constructed or moved-from) token is quiescent.
  bool pinned() const noexcept { return token_ != nullptr && token_->pinned(); }
  std::uint64_t epoch() const noexcept {
    return token_ == nullptr
               ? kEpochQuiescent
               : token_->local_epoch.load(std::memory_order_relaxed);
  }

  /// Defer deletion of an object allocated with gnew/gnewOn. May target any
  /// locale's object; local (and scatter-policy) retires go into the local
  /// limbo list, cross-locale retires are routed per
  /// RuntimeConfig::remote_retire (aggregated through the task's
  /// comm::Aggregator by default).
  template <typename T>
  void deferDelete(T* obj) {
    deferDeleteRaw(obj, &detail::arenaDeleter<T>);
  }

  /// Custom-deleter escape hatch (deleter runs on the object's owner).
  void deferDeleteRaw(void* obj, ObjectDeleter deleter);

  /// Ship buffered cross-locale retires now (normally automatic: batch
  /// threshold, unpin, release, tryReclaim).
  void flush();

  /// Buffered-but-unshipped cross-locale retires (tests/diagnostics).
  std::size_t pendingRetires() const noexcept {
    std::size_t n = 0;
    for (const auto& bucket : pending_remote_) n += bucket.size();
    return n;
  }

  /// Protected read: pass-through under EBR (a pinned token protects every
  /// load); the interval manager's token widens its reservation here. See
  /// BasicGuard::protect (epoch/domain.hpp).
  template <typename F>
  auto protect(F&& load) {
    return std::forward<F>(load)();
  }

  /// Attempt a reclamation from this task (paper: "intended to be invoked
  /// on the token or EpochManager"). False on an invalid token (mirrors
  /// the LocalEpochToken hardening).
  bool tryReclaim() {
    if (token_ == nullptr) return false;
    flush();
    return detail::epochTryReclaim(handle_);
  }

  /// Early unregistration (otherwise the destructor does it).
  void reset() {
    if (token_ == nullptr) return;
    flush();
    handle_.local().unregisterToken(token_);
    token_ = nullptr;
  }

  /// Internal: forget the underlying token WITHOUT unregistering it. Used
  /// by the progress-thread guard cache when the runtime (or the domain's
  /// privatized instances) died before the caching thread: the token pool
  /// the Token lives in is already gone, so unregistering would be a
  /// use-after-free; the Token's memory went down with the arena.
  void abandon() noexcept {
    token_ = nullptr;
    pending_remote_.clear();
  }

 private:
  friend class EpochManager;
  EpochToken(Privatized<EpochManagerImpl> handle, Token* token)
      : handle_(handle),
        token_(token),
        home_(Runtime::here()),
        owner_thread_(std::this_thread::get_id()) {}

  void enqueueBucket(std::uint32_t dest);
  /// The token must be used on its registering locale AND OS thread:
  /// handle_.local() resolves per-calling-locale, and threshold-shipped
  /// batch closures live in the *enqueueing thread's* thread-local
  /// aggregator -- flushing from another thread drains the wrong buffer
  /// and strands the batches past the domain's lifetime.
  void checkHome() const {
    PGASNB_DCHECK(Runtime::here() == home_);
    PGASNB_DCHECK(std::this_thread::get_id() == owner_thread_);
  }

  Privatized<EpochManagerImpl> handle_;
  Token* token_ = nullptr;
  std::uint32_t home_ = 0;                ///< registering locale
  std::thread::id owner_thread_;          ///< registering OS thread
  /// Aggregated-retire buffers, one per destination locale (lazily sized).
  std::vector<std::vector<EpochManagerImpl::ScatterEntry>> pending_remote_;
};

/// Global-view EpochManager handle. Trivially copyable record-wrapper:
/// capture it by value in forall/coforall lambdas and every call resolves
/// to the privatized instance of the executing locale.
class EpochManager {
 public:
  EpochManager() = default;  // invalid handle; use create()

  /// Collective: creates the global epoch (locale 0) and one privatized
  /// instance per locale.
  static EpochManager create();

  /// Collective teardown: reclaims all deferred objects, then destroys the
  /// per-locale instances and the global epoch.
  void destroy();

  bool valid() const noexcept { return handle_.valid(); }

  /// Register the calling task; the token is bound to the calling locale.
  /// Low-level entry used by DistDomain::pin()/attach() -- application code
  /// should program against Guards (epoch/domain.hpp).
  EpochToken acquireToken() const {
    return EpochToken(handle_, handle_.local().registerToken());
  }

  bool tryReclaim() const { return detail::epochTryReclaim(handle_); }

  /// Blocking phase-boundary advance (see detail::epochAdvance): retries
  /// tryReclaim until the global epoch moves, then returns the new epoch.
  std::uint64_t advance() const { return detail::epochAdvance(handle_); }

  /// Reclaim everything across all epochs. Caller guarantees no concurrent
  /// use (paper's `clear`).
  void clear() const { detail::epochClearAll(handle_); }

  std::uint64_t currentGlobalEpoch() const {
    return handle_.local().global().epoch.read();
  }

  /// Summed statistics across locales (diagnostic; quiescent-exact).
  ReclaimStats stats() const;

  /// Zero the statistics on every locale (counters only). Call at a
  /// quiescent point -- typically right after clear().
  void resetStats() const;

  /// White-box access for tests/benches.
  EpochManagerImpl& implHere() const { return handle_.local(); }
  EpochManagerImpl* implOn(std::uint32_t locale) const {
    return handle_.instanceOn(locale);
  }

  /// Stable per-domain identity (the privatization slot); keys the
  /// per-thread cached-guard registry.
  std::size_t privatizationId() const noexcept { return handle_.id(); }

 private:
  Privatized<EpochManagerImpl> handle_;
  GlobalEpoch* global_ = nullptr;
};

}  // namespace pgasnb
