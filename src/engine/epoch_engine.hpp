// Epoch-phased batch execution engine (Caracal / felis style).
//
// The engine turns the library's async/aggregated pipeline into a *phase
// discipline*: a workload hands it an `EpochClient`, and the engine admits
// a batch of M operations per epoch across all locales and runs three
// phases per epoch --
//
//   admit       generate the epoch's operations on per-(locale, worker)
//               lanes and partition each lane's slice by owner locale
//               (the same owner grouping RobinHoodMap::findBatch uses),
//               so the execute phase's aggregated issues fill batches
//               per destination instead of interleaving them;
//   initialize  allocate/stage per-op state under a pinned epoch guard
//               (the client's hook; staging garbage retired here rides
//               the aggregated-retire path like any other retire);
//   execute     issue every staged op through a drain-mode comm::OpWindow
//               -- completions are absorbed mid-window by the lane's
//               DrainGroup-backed queue -- and record per-op latency.
//
// The *epoch is the GC boundary*: at the end of every epoch the engine
// fences the AM queues (so in-flight aggregated retires have landed in a
// limbo list), runs an `epochBoundaryCollective` over all locales, and
// advances the reclamation epoch `boundary_advances` times via
// `DistDomain::advance()`. With the default of 2 advances per boundary
// (and kNumEpochs = 4 limbo lists), garbage retired in epoch N has cycled
// through every list by the end of epoch N+1 -- retired-in-N implies
// reclaimed-by-N+1, structurally, without any workload calling
// tryReclaim. (`boundary_advances = kNumEpochs - 1` empties every limbo
// list at each boundary instead.)
//
// Two phase schedules, selected by `EpochEngineConfig::mode`:
//
//   barriered  admit | barrier+advance | initialize | barrier+advance |
//              execute (serial spin-join windows) | boundary. The serial
//              baseline: every phase is a separate all-locales collective,
//              and execute joins each sub-batch before issuing the next.
//   pipelined  one collective per epoch: each lane issues epoch e's
//              staged ops into a draining window, then -- while the tail
//              of the batch is still in flight -- admits AND initializes
//              epoch e+1 (Caracal's insert/execute overlap), draining
//              completions between bursts, and finally closes the window.
//              Phase boundaries are per-lane; the collective advance rides
//              the epoch boundary.
//
// The pipelined schedule overlaps next-epoch CPU work with in-flight
// communication and keeps every destination's service pipeline full, so
// it beats the barriered baseline on model time (bench/epoch_engine.cpp
// enforces >= 1.3x at 8 locales).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "epoch/domain.hpp"
#include "epoch/reclaim_stats.hpp"
#include "runtime/comm.hpp"

namespace pgasnb::engine {

/// One admitted operation. `key`/`arg`/`kind` are client-defined payload
/// (kind typically encodes read/update/insert; arg can stash a staged
/// pointer); `owner` is filled by the admit phase from
/// EpochClient::ownerOf, and `issue_ns` by the execute phase at issue.
struct OpRecord {
  std::uint64_t key = 0;
  std::uint64_t arg = 0;
  std::uint32_t kind = 0;
  std::uint32_t owner = 0;
  std::uint64_t issue_ns = 0;
};

/// Type-erased completion ticket: any comm::Handle<T> converts (sharing
/// the completion core), so EpochClient::execute can return whatever
/// handle flavor the underlying operation produced and the engine can
/// still read its completion time for latency accounting.
class OpTicket {
 public:
  OpTicket() = default;
  template <typename T>
  OpTicket(const comm::Handle<T>& h)  // NOLINT: implicit by design
      : core_(h.state()) {}

  bool valid() const noexcept { return core_ != nullptr; }
  bool ready() const noexcept {
    return core_ != nullptr &&
           core_->done.load(std::memory_order_acquire) != 0;
  }
  /// The op's simulated completion time (valid once ready; excludes the
  /// return wire, like Handle::completionTime).
  std::uint64_t completionTime() const noexcept {
    return core_->done.load(std::memory_order_acquire) - 1;
  }

 private:
  std::shared_ptr<comm::detail::HandleCore> core_;
};

/// The workload half of the engine (felis's EpochClient): the engine owns
/// the phase schedule, collectives, windows, and epoch advances; the
/// client owns what an operation *is*. Hooks are invoked on the lane's
/// locale (admit/initialize/execute run inside the engine's collectives),
/// possibly on a different OS thread each epoch -- keep per-lane state in
/// the OpRecords or index it by the `lane` id, not in thread-locals.
class EpochClient {
 public:
  virtual ~EpochClient() = default;

  /// Admit op `k` (0-based within the lane's slice) of `lane` for `epoch`.
  /// Pure generation: no communication, no allocation -- that belongs in
  /// initialize/execute. Deterministic per (epoch, lane, k) makes runs
  /// reproducible across schedules.
  virtual OpRecord admit(std::uint64_t epoch, std::uint32_t lane,
                         std::uint64_t k) = 0;

  /// The owner locale of an admitted op; the admit phase partitions each
  /// lane's slice by this (OpRecord::owner) before staging.
  virtual std::uint32_t ownerOf(const OpRecord& op) const = 0;

  /// Initialize phase hook: allocate/stage per-op state for the epoch's
  /// slice under `guard` (pinned for the duration of the call; unpinning
  /// and flushing are the engine's business). Garbage retired here is
  /// epoch-N garbage -- the boundary protocol reclaims it by N+1. Default:
  /// nothing to stage.
  virtual void initialize(std::uint64_t epoch, DistGuard& guard,
                          std::span<OpRecord> ops) {
    (void)epoch;
    (void)guard;
    (void)ops;
  }

  /// Execute phase hook: issue `op` asynchronously and return its ticket.
  /// The op must be *owned by `window`* -- either issue through the
  /// aggregated surface (taskAggregator-riding ops auto-enroll into the
  /// innermost open window) or adopt a plain async handle with
  /// `window.add(h)`. The engine never enrolls the ticket itself; it only
  /// reads completion times. Return an invalid ticket for ops with no
  /// completion to track (fire-and-forget).
  virtual OpTicket execute(std::uint64_t epoch, OpRecord& op,
                           comm::OpWindow& window) = 0;
};

/// Which phase schedule the engine runs (see the header comment).
enum class PhaseMode : std::uint8_t { barriered, pipelined };

inline const char* toString(PhaseMode mode) noexcept {
  return mode == PhaseMode::barriered ? "barriered" : "pipelined";
}

struct EpochEngineConfig {
  /// M: operations admitted per epoch across ALL locales, split as evenly
  /// as possible over the locales * workers_per_locale lanes (earlier
  /// lanes absorb the remainder).
  std::uint64_t ops_per_epoch = 1 << 13;
  /// Admit/execute lanes per locale (one coforallHere task each).
  std::uint32_t workers_per_locale = 2;
  /// Execute-phase sub-batch: pipelined lanes drain their window every
  /// `window_ops` issues; the barriered baseline spin-joins a fresh window
  /// per `window_ops` slice.
  std::uint64_t window_ops = 64;
  PhaseMode mode = PhaseMode::pipelined;
  /// Reclamation advances per epoch boundary. >= 2 preserves the
  /// retired-in-N => reclaimed-by-end-of-N+1 guarantee (4 limbo lists, 4
  /// advances across two boundaries cycle them all); kNumEpochs - 1 = 3
  /// empties every list at every boundary.
  std::uint32_t boundary_advances = 2;
  /// CPU charged per op by the admit phase's owner partitioning (hash +
  /// counting-sort work, simulated ns).
  std::uint64_t admit_cpu_ns_per_op = 60;
  /// Keep the epoch's raw latency samples (ns) in EpochStats so callers
  /// can feed them into a bench::LatencyRecorder window; the percentiles
  /// are computed either way.
  bool keep_latency_samples = false;
};

/// Per-epoch report, produced at the epoch's boundary.
struct EpochStats {
  std::uint64_t epoch = 0;
  std::uint64_t ops = 0;        ///< ops executed this epoch
  double model_s = 0.0;         ///< simulated duration of the epoch
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  /// Cumulative domain ReclaimStats snapshot taken after the boundary's
  /// advances (quiescent-exact: the AM queues are fenced first).
  ReclaimStats reclaim;
  /// Global-epoch value after the boundary (diagnostics).
  std::uint64_t global_epoch = 0;
  /// Raw latency samples (ns) when keep_latency_samples is set.
  std::vector<double> latencies_ns;

  double throughputOps() const noexcept {
    return model_s > 0.0 ? static_cast<double>(ops) / model_s : 0.0;
  }
};

/// The driver. Construct once per (domain, client, config) and call run();
/// the constructor allocates the lane state, run() executes epochs
/// 0..epochs-1 and returns one EpochStats per epoch. Not thread-safe; the
/// initiator thread owns it (collectives are launched from run()).
class EpochEngine {
 public:
  EpochEngine(DistDomain domain, EpochClient& client,
              EpochEngineConfig config);
  ~EpochEngine();
  EpochEngine(const EpochEngine&) = delete;
  EpochEngine& operator=(const EpochEngine&) = delete;

  /// Run `epochs` epochs under the configured schedule. Each epoch ends
  /// with the boundary protocol (AM fence + boundary collective +
  /// boundary_advances reclamation advances) before its stats are
  /// snapshotted, so stats[e].reclaim reflects a quiescent domain.
  std::vector<EpochStats> run(std::uint64_t epochs);

  const EpochEngineConfig& config() const noexcept { return config_; }
  std::uint32_t lanes() const noexcept;

 private:
  struct Impl;
  DistDomain domain_;
  EpochClient& client_;
  EpochEngineConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pgasnb::engine
