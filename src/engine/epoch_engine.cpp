// EpochEngine driver: the phase schedules, the lane plumbing, and the
// epoch-boundary reclamation protocol. See engine/epoch_engine.hpp for the
// architecture comment.
#include "engine/epoch_engine.hpp"

#include <algorithm>
#include <utility>

#include "runtime/collectives.hpp"
#include "runtime/runtime.hpp"
#include "runtime/sim_clock.hpp"
#include "runtime/task.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace pgasnb::engine {

/// Per-(locale, worker) lane state. Lanes persist across the per-epoch
/// collectives (only plain data -- OpRecords, tickets, samples -- because
/// a lane's task may land on a different OS thread each collective;
/// thread-affine state like guards and windows lives and dies inside one
/// collective body). Each locale's tasks touch only that locale's lanes;
/// the initiator reads them between collectives, synchronized by the
/// task-group joins.
namespace {

struct Lane {
  std::vector<OpRecord> staged;  ///< ops for the next execute phase
  std::vector<OpRecord> next;    ///< built by the pipelined overlap
  std::vector<std::pair<std::uint64_t, OpTicket>> inflight;
  std::vector<double> latencies;  ///< this epoch's samples (ns)
  std::uint64_t executed = 0;     ///< ops issued this epoch
};

}  // namespace

struct EpochEngine::Impl {
  std::vector<Lane> lanes;
};

namespace {

/// M split as evenly as possible across lanes; earlier lanes absorb the
/// remainder (deterministic, schedule-independent).
std::uint64_t opsForLane(std::uint64_t ops_per_epoch, std::uint32_t lane_id,
                         std::uint32_t n_lanes) {
  const std::uint64_t base = ops_per_epoch / n_lanes;
  return base + (lane_id < ops_per_epoch % n_lanes ? 1 : 0);
}

/// Admit phase for one lane: generate the slice, then partition it by
/// owner locale -- the counting-sort flavor of the owner grouping
/// RobinHoodMap::findBatch does with index buckets. Per-owner admit order
/// is preserved (stable scatter), so per-destination FIFO semantics of the
/// aggregated surface carry through. Charges admit CPU per op.
void admitAndGroup(EpochClient& client, const EpochEngineConfig& cfg,
                   std::uint64_t epoch, std::uint32_t lane_id,
                   std::uint64_t count, std::vector<OpRecord>& out) {
  out.clear();
  out.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    OpRecord op = client.admit(epoch, lane_id, k);
    op.owner = client.ownerOf(op);
    out.push_back(op);
  }
  const std::uint32_t n_loc = Runtime::get().numLocales();
  std::vector<std::uint64_t> cursor(n_loc + 1, 0);
  for (const OpRecord& op : out) {
    PGASNB_CHECK_MSG(op.owner < n_loc,
                     "EpochClient::ownerOf returned an invalid locale");
    ++cursor[op.owner + 1];
  }
  for (std::uint32_t l = 0; l < n_loc; ++l) cursor[l + 1] += cursor[l];
  std::vector<OpRecord> grouped(out.size());
  for (const OpRecord& op : out) grouped[cursor[op.owner]++] = op;
  out.swap(grouped);
  sim::charge(count * cfg.admit_cpu_ns_per_op);
}

/// Initialize phase for one lane: the client stages under a guard pinned
/// for the duration of the call. Scope exit unpins + unregisters, which
/// ships any retires the staging buffered (flush-on-unpin).
void initializeLane(DistDomain domain, EpochClient& client,
                    std::uint64_t epoch, std::vector<OpRecord>& ops) {
  auto guard = domain.pin();
  client.initialize(epoch, guard,
                    std::span<OpRecord>(ops.data(), ops.size()));
}

/// Fold the closed window's completion times into latency samples. Every
/// valid ticket must be ready by now -- a pending one means the client
/// issued an op the window did not own (contract violation).
void recordLatencies(Lane& lane) {
  for (const auto& [issue, ticket] : lane.inflight) {
    PGASNB_CHECK_MSG(ticket.ready(),
                     "EpochClient::execute returned a ticket the OpWindow "
                     "did not own (still pending after close)");
    const std::uint64_t done = ticket.completionTime();
    lane.latencies.push_back(
        done > issue ? static_cast<double>(done - issue) : 0.0);
  }
  lane.inflight.clear();
}

/// Pipelined execute for one lane: issue epoch e's staged ops into a
/// draining window, overlap admit+initialize of e+1 with the in-flight
/// tail, then close. One collective per epoch runs this on every lane.
void executeLanePipelined(DistDomain domain, EpochClient& client,
                          const EpochEngineConfig& cfg, std::uint64_t epoch,
                          std::uint32_t lane_id, std::uint64_t next_count,
                          bool prepare_next, Lane& lane) {
  lane.latencies.clear();
  lane.inflight.clear();
  lane.inflight.reserve(lane.staged.size());
  lane.executed = lane.staged.size();
  {
    comm::OpWindow window(comm::WindowMode::drain);
    std::uint64_t since_drain = 0;
    for (OpRecord& op : lane.staged) {
      op.issue_ns = sim::now();
      OpTicket ticket = client.execute(epoch, op, window);
      if (ticket.valid()) lane.inflight.emplace_back(op.issue_ns, ticket);
      if (++since_drain >= cfg.window_ops) {
        window.drain();  // absorb the finished head mid-window
        since_drain = 0;
      }
    }
    // Cross-epoch overlap (Caracal's insert/execute pipelining): admit and
    // initialize epoch e+1 while e's tail is still in flight. Pure local
    // CPU + staging work; the drain in between absorbs completions that
    // landed during the admit pass.
    if (prepare_next) {
      admitAndGroup(client, cfg, epoch + 1, lane_id, next_count, lane.next);
      window.drain();
      initializeLane(domain, client, epoch + 1, lane.next);
    }
  }  // close: ship buffered batches, drain to quiescence, one max-fold
  recordLatencies(lane);
  lane.staged.swap(lane.next);
  lane.next.clear();
}

/// Barriered execute for one lane: serial spin-join windows of window_ops
/// -- sub-batch i+1 is not issued until sub-batch i has fully joined (the
/// phase-barriered serial baseline the bench compares against).
void executeLaneBarriered(EpochClient& client, const EpochEngineConfig& cfg,
                          std::uint64_t epoch, Lane& lane) {
  lane.latencies.clear();
  lane.inflight.clear();
  lane.inflight.reserve(lane.staged.size());
  lane.executed = lane.staged.size();
  std::size_t i = 0;
  while (i < lane.staged.size()) {
    const std::size_t end =
        std::min(i + static_cast<std::size_t>(cfg.window_ops),
                 lane.staged.size());
    {
      comm::OpWindow window;  // WindowMode::spin
      for (; i < end; ++i) {
        OpRecord& op = lane.staged[i];
        op.issue_ns = sim::now();
        OpTicket ticket = client.execute(epoch, op, window);
        if (ticket.valid()) lane.inflight.emplace_back(op.issue_ns, ticket);
      }
    }  // spin-join this sub-batch before the next is issued
  }
  recordLatencies(lane);
  lane.staged.clear();
}

}  // namespace

EpochEngine::EpochEngine(DistDomain domain, EpochClient& client,
                         EpochEngineConfig config)
    : domain_(domain), client_(client), config_(config),
      impl_(std::make_unique<Impl>()) {
  PGASNB_CHECK_MSG(domain_.valid(),
                   "EpochEngine needs a created DistDomain");
  PGASNB_CHECK_MSG(config_.ops_per_epoch > 0,
                   "EpochEngine: ops_per_epoch must be positive");
  PGASNB_CHECK_MSG(config_.workers_per_locale > 0,
                   "EpochEngine: workers_per_locale must be positive");
  if (config_.window_ops == 0) config_.window_ops = 1;
  if (config_.boundary_advances == 0) config_.boundary_advances = 1;
}

EpochEngine::~EpochEngine() = default;

std::uint32_t EpochEngine::lanes() const noexcept {
  return Runtime::active()
             ? Runtime::get().numLocales() * config_.workers_per_locale
             : 0;
}

std::vector<EpochStats> EpochEngine::run(std::uint64_t epochs) {
  PGASNB_CHECK_MSG(Runtime::active(), "EpochEngine::run needs a runtime");
  const std::uint32_t n_loc = Runtime::get().numLocales();
  const std::uint32_t W = config_.workers_per_locale;
  const std::uint32_t n_lanes = n_loc * W;
  auto& lanes = impl_->lanes;
  lanes.assign(n_lanes, Lane{});

  std::vector<EpochStats> stats;
  stats.reserve(epochs);
  if (epochs == 0) return stats;

  // One collective per phase (barriered) or per epoch (pipelined): each
  // locale runs W lane tasks, each operating on its own Lane slot.
  const auto forEachLane =
      [&](const std::function<void(std::uint32_t, Lane&)>& body) {
        coforallLocales([&] {
          const auto here = static_cast<std::uint32_t>(Runtime::here());
          coforallHere(W, [&](std::uint32_t w) {
            const std::uint32_t lane_id = here * W + w;
            body(lane_id, lanes[lane_id]);
          });
        });
      };

  if (config_.mode == PhaseMode::pipelined) {
    // Prologue: epoch 0's admit + initialize (there is nothing to overlap
    // them with yet; from epoch 0 on they ride the previous execute).
    forEachLane([&](std::uint32_t lane_id, Lane& lane) {
      admitAndGroup(client_, config_, /*epoch=*/0, lane_id,
                    opsForLane(config_.ops_per_epoch, lane_id, n_lanes),
                    lane.staged);
      initializeLane(domain_, client_, /*epoch=*/0, lane.staged);
    });
  }

  for (std::uint64_t e = 0; e < epochs; ++e) {
    const std::uint64_t t0 = sim::now();
    if (config_.mode == PhaseMode::pipelined) {
      const bool prepare_next = e + 1 < epochs;
      forEachLane([&](std::uint32_t lane_id, Lane& lane) {
        executeLanePipelined(
            domain_, client_, config_, e, lane_id,
            opsForLane(config_.ops_per_epoch, lane_id, n_lanes),
            prepare_next, lane);
      });
    } else {
      // admit | barrier + advance | initialize | barrier + advance |
      // execute. The collective joins are the barriers; the advance makes
      // each phase boundary a reclamation boundary too.
      forEachLane([&](std::uint32_t lane_id, Lane& lane) {
        admitAndGroup(client_, config_, e, lane_id,
                      opsForLane(config_.ops_per_epoch, lane_id, n_lanes),
                      lane.staged);
      });
      domain_.advance();
      forEachLane([&](std::uint32_t, Lane& lane) {
        initializeLane(domain_, client_, e, lane.staged);
      });
      domain_.advance();
      forEachLane([&](std::uint32_t, Lane& lane) {
        executeLaneBarriered(client_, config_, e, lane);
      });
    }

    // --- epoch boundary ---------------------------------------------------
    // Fence the AM queues (in-flight aggregated retires land in a limbo
    // list), verify every lane of every locale is quiescent, then advance
    // the reclamation epoch. Two advances per boundary cycle all four
    // limbo lists across two boundaries: retired in N => reclaimed by the
    // end of N+1.
    const bool quiescent = epochBoundaryCollective([&lanes, W] {
      const auto here = static_cast<std::uint32_t>(Runtime::here());
      for (std::uint32_t w = 0; w < W; ++w) {
        if (!lanes[here * W + w].inflight.empty()) return false;
      }
      return true;
    });
    PGASNB_CHECK_MSG(quiescent,
                     "EpochEngine: epoch boundary reached with lane ops "
                     "still in flight");
    for (std::uint32_t i = 0; i < config_.boundary_advances; ++i) {
      domain_.advance();
    }

    EpochStats s;
    s.epoch = e;
    s.global_epoch = domain_.currentEpoch();
    s.reclaim = domain_.stats();
    std::vector<double> merged;
    for (Lane& lane : lanes) {
      s.ops += lane.executed;
      lane.executed = 0;
      merged.insert(merged.end(), lane.latencies.begin(),
                    lane.latencies.end());
      lane.latencies.clear();
    }
    s.p50_us = percentile(merged, 0.50) * 1e-3;
    s.p95_us = percentile(merged, 0.95) * 1e-3;
    s.p99_us = percentile(merged, 0.99) * 1e-3;
    s.model_s = static_cast<double>(sim::now() - t0) * 1e-9;
    if (config_.keep_latency_samples) s.latencies_ns = std::move(merged);
    stats.push_back(std::move(s));
  }
  return stats;
}

}  // namespace pgasnb::engine
