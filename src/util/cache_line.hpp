// Cache-line geometry and false-sharing avoidance helpers.
//
// Non-blocking algorithms are dominated by coherence traffic; every hot
// atomic in this library is isolated on its own cache line via CachePadded.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pgasnb {

// Pinned to 64 (x86-64 / AArch64 reality) rather than
// std::hardware_destructive_interference_size, which is ABI-unstable across
// compiler flags and triggers -Winterference-size.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a value so it occupies (at least) one full cache line, preventing
/// false sharing between adjacent hot objects.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  T value;

  CachePadded() = default;
  template <typename... Args>
  explicit CachePadded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

/// Pause instruction for spin loops; keeps the pipeline and a hyper-twin
/// happy without giving up the time slice.
inline void cpuRelax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

}  // namespace pgasnb
