// Small statistics helpers for benchmarks and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace pgasnb {

/// Welford's online mean/variance; numerically stable single pass.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

  void merge(const OnlineStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto total = static_cast<double>(n_ + other.n_);
    m2_ += other.m2_ + delta * delta *
                           (static_cast<double>(n_) *
                            static_cast<double>(other.n_) / total);
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile over a sample vector (linear interpolation, q in [0,1]).
inline double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

}  // namespace pgasnb
