// Bounded exponential backoff for contended CAS loops.
//
// Retry loops in the non-blocking structures back off to reduce coherence
// storms; after a threshold the backoff yields the OS thread, which matters
// here because simulated locales oversubscribe physical cores.
#pragma once

#include <cstdint>
#include <thread>

#include "util/cache_line.hpp"

namespace pgasnb {

class Backoff {
 public:
  explicit Backoff(std::uint32_t min_spins = 4,
                   std::uint32_t max_spins = 1024) noexcept
      : current_(min_spins), max_spins_(max_spins) {}

  /// One backoff episode; escalates geometrically, then yields.
  void pause() noexcept {
    if (current_ <= max_spins_) {
      for (std::uint32_t i = 0; i < current_; ++i) cpuRelax();
      current_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  void reset(std::uint32_t min_spins = 4) noexcept { current_ = min_spins; }

  /// True once the spin phase is exhausted (useful for tests/diagnostics).
  bool saturated() const noexcept { return current_ > max_spins_; }

 private:
  std::uint32_t current_;
  std::uint32_t max_spins_;
};

/// Spin until `cond()` is true, backing off in between. Returns the number
/// of episodes taken (0 if the condition held immediately).
template <typename Cond>
std::uint64_t spinUntil(Cond&& cond) {
  Backoff backoff;
  std::uint64_t episodes = 0;
  while (!cond()) {
    backoff.pause();
    ++episodes;
  }
  return episodes;
}

}  // namespace pgasnb
