// Minimal command-line/environment option parsing for benches and examples.
//
// Supports `--key=value` and `--flag` arguments plus `PGASNB_*` environment
// fallbacks so the whole bench suite can be scaled with one variable.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>

namespace pgasnb {

class Options {
 public:
  Options() = default;

  Options(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg(argv[i]);
      if (arg.rfind("--", 0) != 0) continue;
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        values_[std::string(arg)] = "1";
      } else {
        values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      }
    }
  }

  /// Lookup order: command line, then environment (PGASNB_<UPPER_KEY>),
  /// then the provided default.
  std::string str(const std::string& key, const std::string& def = "") const {
    if (const auto it = values_.find(key); it != values_.end()) {
      return it->second;
    }
    std::string env_key = "PGASNB_";
    for (const char c : key) {
      env_key.push_back(c == '-' ? '_' : static_cast<char>(std::toupper(c)));
    }
    if (const char* env = std::getenv(env_key.c_str()); env != nullptr) {
      return env;
    }
    return def;
  }

  std::int64_t integer(const std::string& key, std::int64_t def) const {
    const std::string v = str(key);
    return v.empty() ? def : std::strtoll(v.c_str(), nullptr, 0);
  }

  double real(const std::string& key, double def) const {
    const std::string v = str(key);
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }

  bool boolean(const std::string& key, bool def) const {
    const std::string v = str(key);
    if (v.empty()) return def;
    return v != "0" && v != "false" && v != "no";
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pgasnb
