// Always-on invariant checking.
//
// PGASNB_CHECK stays active in release builds: the library's correctness
// claims (EBR safety, arena ownership, pointer-compression ranges) are cheap
// to verify relative to the simulated communication costs, and silent
// corruption in a concurrency library is far worse than a branch.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pgasnb::detail {

[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "pgasnb: check failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace pgasnb::detail

#define PGASNB_CHECK(expr)                                               \
  (static_cast<bool>(expr)                                               \
       ? void(0)                                                         \
       : ::pgasnb::detail::checkFailed(#expr, __FILE__, __LINE__, nullptr))

#define PGASNB_CHECK_MSG(expr, msg)                                      \
  (static_cast<bool>(expr)                                               \
       ? void(0)                                                         \
       : ::pgasnb::detail::checkFailed(#expr, __FILE__, __LINE__, (msg)))

#ifndef NDEBUG
#define PGASNB_DCHECK(expr) PGASNB_CHECK(expr)
#else
#define PGASNB_DCHECK(expr) void(0)
#endif
