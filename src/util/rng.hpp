// Deterministic, fast pseudo-random number generation for workloads.
//
// Benchmarks and property tests need per-task streams that are (a) cheap
// enough to not perturb measurements and (b) reproducible across runs, so we
// use splitmix64 for seeding and xoshiro256** for the stream.
#pragma once

#include <cstdint>

namespace pgasnb {

/// splitmix64: used to expand a single seed into stream state.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna; public-domain algorithm.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased-enough bounded draw for workload mixing (Lemire reduction).
  std::uint64_t nextBelow(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double nextDouble() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool nextBool(double probability) noexcept {
    return nextDouble() < probability;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace pgasnb
