// Fixed-width table printing for benchmark output.
//
// Every figure bench prints the same row schema so EXPERIMENTS.md can be
// regenerated mechanically:  figure, series, x, wall_s, model_s, extra...
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace pgasnb {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    widths_.reserve(headers_.size());
    for (const auto& h : headers_) widths_.push_back(h.size());
  }

  void addRow(std::vector<std::string> cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void print(std::FILE* out = stdout) const {
    printRow(out, headers_);
    std::string rule;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      rule += std::string(widths_[i], '-');
      if (i + 1 < headers_.size()) rule += "-+-";
    }
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto& row : rows_) printRow(out, row);
    std::fflush(out);
  }

 private:
  void printRow(std::FILE* out, const std::vector<std::string>& cells) const {
    std::string line;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      line += cell;
      if (cell.size() < widths_[i]) line += std::string(widths_[i] - cell.size(), ' ');
      if (i + 1 < headers_.size()) line += " | ";
    }
    std::fprintf(out, "%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string formatSeconds(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds);
  return buf;
}

}  // namespace pgasnb
