// Umbrella header for the pgas-nb library.
//
//   #include <pgasnb.hpp>
//
//   int main() {
//     pgasnb::RuntimeConfig cfg;
//     cfg.num_locales = 8;
//     pgasnb::Runtime rt(cfg);
//     auto manager = pgasnb::EpochManager::create();
//     ...
//     manager.destroy();
//   }
#pragma once

#include "util/backoff.hpp"
#include "util/cache_line.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include "runtime/config.hpp"
#include "runtime/runtime.hpp"
#include "runtime/comm.hpp"
#include "runtime/task.hpp"
#include "runtime/collectives.hpp"
#include "runtime/privatization.hpp"
#include "runtime/dist_domain.hpp"
#include "runtime/wide_ptr.hpp"

#include "atomic/aba.hpp"
#include "atomic/dcas.hpp"
#include "atomic/pointer_compression.hpp"
#include "atomic/local_atomic_object.hpp"
#include "atomic/atomic_object.hpp"

#include "epoch/limbo_list.hpp"
#include "epoch/token.hpp"
#include "epoch/epoch_manager.hpp"
#include "epoch/local_epoch_manager.hpp"

#include "ds/treiber_stack.hpp"
#include "ds/ms_queue.hpp"
#include "ds/harris_list.hpp"
#include "ds/dist_stack.hpp"
#include "ds/interlocked_hash_table.hpp"
