// Umbrella header for the pgas-nb library.
//
// The documented entry point to reclamation is the Domain/Guard API
// (epoch/domain.hpp): pick a reclaim domain, pin a guard, retire garbage.
//
//   #include <pgasnb.hpp>
//
//   // Shared memory (no runtime needed):
//   pgasnb::LocalDomain domain;
//   pgasnb::EbrStack<int> stack(domain);
//   {
//     auto guard = domain.pin();        // RAII: unpin+unregister at scope exit
//     stack.push(guard, 42);
//     stack.pop(guard);                 // popped node retired via the guard
//     guard.tryReclaim();
//   }
//
//   // PGAS (distributed):
//   int main() {
//     pgasnb::RuntimeConfig cfg;
//     cfg.num_locales = 8;
//     pgasnb::Runtime rt(cfg);
//     auto domain = pgasnb::DistDomain::create();
//     auto* stack = pgasnb::DistStack<std::uint64_t>::create(domain);
//     pgasnb::coforallLocales([domain, stack] {
//       auto guard = domain.pin();
//       stack->push(guard, pgasnb::Runtime::here());
//       stack->pop(guard);              // node shipped home at reclaim time
//     });
//     pgasnb::DistStack<std::uint64_t>::destroy(stack);
//     domain.destroy();
//   }
//
// Every data structure in ds/ takes the Domain as a template parameter, so
// the same algorithm body serves both builds. The communication layer is
// non-blocking underneath: hot ops have async variants returning a
// comm::Handle<T>, fire-and-forget work (cross-locale retires above all)
// is coalesced per destination by comm::Aggregator, and a comm::OpWindow
// scopes batch-then-join over the aggregated ops (close = auto-flush +
// join at the max sim-time). Drain completions -- with as many worker
// tasks as you like -- through the MPMC comm::CompletionQueue. See
// docs/API.md for the guide and docs/ARCHITECTURE.md for the layer map.
#pragma once

#include "util/backoff.hpp"
#include "util/cache_line.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include "runtime/config.hpp"
#include "runtime/runtime.hpp"
#include "runtime/comm.hpp"
#include "runtime/task.hpp"
#include "runtime/collectives.hpp"
#include "runtime/privatization.hpp"
#include "runtime/dist_domain.hpp"
#include "runtime/wide_ptr.hpp"

#include "atomic/aba.hpp"
#include "atomic/dcas.hpp"
#include "atomic/pointer_compression.hpp"
#include "atomic/local_atomic_object.hpp"
#include "atomic/atomic_object.hpp"
#include "atomic/domain_traits.hpp"

#include "epoch/limbo_list.hpp"
#include "epoch/token.hpp"
#include "epoch/reclaim_stats.hpp"
#include "epoch/epoch_manager.hpp"
#include "epoch/local_epoch_manager.hpp"
#include "epoch/domain.hpp"
#include "epoch/interval_manager.hpp"

#include "ds/treiber_stack.hpp"
#include "ds/ms_queue.hpp"
#include "ds/harris_list.hpp"
#include "ds/dist_stack.hpp"
#include "ds/interlocked_hash_table.hpp"
#include "ds/robinhood_map.hpp"

#include "engine/epoch_engine.hpp"
